//! Chaos torture: every adversarial ingredient at once.
//!
//! Rounds of: plant crashed operations at random circuit points (the
//! paper's crash-failure model), then hammer the tree from worker threads
//! with mixed operations, cleaning searches and whole-tree snapshots, and
//! finally validate structure, Figure-4 circuit identities (abandoned-
//! tolerant) and membership/snapshot agreement.

use nbbst::core::raw::{DeleteSearch, MarkOutcome, RawDelete, RawInsert};
use nbbst::{ConcurrentMap, NbBst};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RANGE: u64 = 128;

/// Plants up to `n` crashed operations at randomized circuit points.
/// Returns how many actually planted (a flag attempt can find its node
/// already flagged by an earlier corpse and be skipped).
fn plant_corpses(tree: &NbBst<u64, u64>, rng: &mut SmallRng, n: usize) -> usize {
    let mut planted = 0;
    for _ in 0..n {
        match rng.gen_range(0..3u8) {
            0 => {
                // Insert crashed after iflag.
                let k = rng.gen_range(0..RANGE * 2);
                let mut ins = RawInsert::new(tree, k, k);
                if ins.search().is_ready() && ins.flag() {
                    planted += 1;
                    ins.abandon();
                }
            }
            1 => {
                // Delete crashed after dflag.
                let k = rng.gen_range(0..RANGE);
                let mut del = RawDelete::new(tree, k);
                if del.search() == DeleteSearch::Ready && del.flag() {
                    planted += 1;
                    del.abandon();
                }
            }
            _ => {
                // Delete crashed after mark.
                let k = rng.gen_range(0..RANGE);
                let mut del = RawDelete::new(tree, k);
                if del.search() == DeleteSearch::Ready
                    && del.flag()
                    && del.mark() == MarkOutcome::Marked
                {
                    planted += 1;
                    del.abandon();
                }
            }
        }
    }
    planted
}

#[test]
fn chaos_rounds_with_crashes_churn_and_cleanup() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE);
    for round in 0..5u64 {
        let tree: NbBst<u64, u64> = NbBst::with_stats();
        for k in 0..RANGE {
            if k % 2 == 0 {
                tree.insert(k, k);
            }
        }
        let planted = plant_corpses(&tree, &mut rng, 8);

        std::thread::scope(|s| {
            // Mixed-op workers.
            for tid in 0..3u64 {
                let tree = &tree;
                s.spawn(move || {
                    let mut x = round * 31 + tid + 1;
                    for _ in 0..4_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % RANGE;
                        match x % 4 {
                            0 => {
                                tree.insert(k, k);
                            }
                            1 => {
                                tree.remove(&k);
                            }
                            2 => {
                                tree.contains(&k);
                            }
                            _ => {
                                // The Section-6 cleaning search clears
                                // marked corpses as it goes.
                                tree.contains_with_cleanup(&k);
                            }
                        }
                    }
                });
            }
            // A snapshot reader validating well-formedness throughout.
            {
                let tree = &tree;
                s.spawn(move || {
                    for _ in 0..30 {
                        let keys = tree.keys_snapshot();
                        assert!(
                            keys.windows(2).all(|w| w[0] < w[1]),
                            "snapshot must be sorted + duplicate-free"
                        );
                    }
                });
            }
        });

        // Post-round validation. Flags from corpses may remain (nobody
        // was forced to cross them); structure must still be sound.
        tree.check_invariants_allowing(true)
            .unwrap_or_else(|e| panic!("round {round} (planted {planted}): {e}"));
        tree.stats()
            .unwrap()
            .check_figure4_allowing_abandoned()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));

        // Membership and snapshot agree.
        let snapshot = tree.keys_snapshot();
        let observed: Vec<u64> = (0..RANGE * 2).filter(|k| tree.contains(k)).collect();
        assert_eq!(snapshot, observed, "round {round}");
        // Tree dropped here with corpses outstanding: teardown reclaims
        // flags/Info records/speculative subtrees (checked by allocator
        // health across rounds).
    }
}

#[test]
fn chaos_many_trees_in_parallel() {
    // Several trees churned by interleaved threads: collector isolation
    // (per-tree epochs, shared TLS handle cache) must hold up.
    std::thread::scope(|s| {
        for t in 0..3u64 {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t);
                for _ in 0..20 {
                    let tree: NbBst<u64, u64> = NbBst::new();
                    for _ in 0..300 {
                        let k = rng.gen_range(0..64u64);
                        if rng.gen() {
                            tree.insert(k, k);
                        } else {
                            tree.remove(&k);
                        }
                    }
                    tree.check_invariants().unwrap();
                }
            });
        }
    });
}

#[test]
fn chaos_snapshot_reader_under_heavy_delete_load() {
    let tree: NbBst<u64, u64> = NbBst::new();
    for k in 0..RANGE {
        tree.insert(k, k);
    }
    std::thread::scope(|s| {
        let deleter = s.spawn(|| {
            for k in 0..RANGE {
                tree.remove(&k);
            }
        });
        // Range readers racing the deletions: results shrink over time but
        // are always well-formed.
        for _ in 0..100 {
            let r = tree.range_snapshot(
                std::ops::Bound::Included(&32),
                std::ops::Bound::Excluded(&96),
            );
            assert!(r.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(r.iter().all(|(k, v)| (32..96).contains(k) && k == v));
        }
        deleter.join().unwrap();
    });
    assert_eq!(tree.quiescent_len(), 0);
    tree.check_invariants().unwrap();
}
