//! T7 integration test: the Section 6 adversarial schedule starves a
//! `Find` while updates keep completing (lock-free, not wait-free).

use nbbst::core::raw::RawFind;
use nbbst::NbBst;

#[test]
fn section6_schedule_starves_find_indefinitely() {
    let tree: NbBst<u64, u64> = NbBst::new();
    for k in [1u64, 2, 3] {
        tree.insert_entry(k, k).unwrap();
    }

    // Find(2) walks until it reaches an internal node keyed 2.
    let mut find = RawFind::new(&tree, 2);
    while !find.at_internal_keyed(&2) {
        assert!(!find.step(), "must pause above a leaf");
    }

    const ROUNDS: u64 = 500;
    for round in 0..ROUNDS {
        // Adversary: delete 1, re-insert 1, delete 3, re-insert 3.
        assert!(tree.remove_key(&1), "round {round}");
        tree.insert_entry(1, 1).unwrap();
        assert!(tree.remove_key(&3), "round {round}");
        tree.insert_entry(3, 3).unwrap();

        // Find advances two edges and is back at an internal 2.
        assert!(!find.step(), "round {round}: reached a leaf unexpectedly");
        assert!(!find.step(), "round {round}: reached a leaf unexpectedly");
        assert!(
            find.at_internal_keyed(&2),
            "round {round}: schedule lost its shape"
        );
    }
    assert_eq!(find.result(), None, "Find must still be running");
    assert!(find.steps_taken() >= 2 * ROUNDS);

    // Stop the adversary: the Find completes immediately and correctly.
    while !find.step() {}
    assert_eq!(find.result(), Some(true));
    tree.check_invariants().unwrap();
}

#[test]
fn find_completes_in_logarithmic_steps_without_adversary() {
    let tree: NbBst<u64, u64> = NbBst::new();
    // Pseudo-random insertion order (389 is coprime to 1024): random
    // fills give the logarithmic expected depth of Section 6's citation
    // [19]; a sorted fill would degenerate to a 1024-deep spine.
    for i in 0..1_024u64 {
        let k = (i * 389) % 1_024;
        tree.insert_entry(k, k).unwrap();
    }
    let mut find = RawFind::new(&tree, 512);
    let mut steps = 0;
    while !find.step() {
        steps += 1;
        assert!(steps < 200, "find must terminate quickly in a quiet tree");
    }
    assert_eq!(find.result(), Some(true));
}
