//! Cross-crate concurrent stress: every structure under the same
//! workloads, validated with the same accounting, plus EFRB-specific
//! invariant and Figure-4 verification under stress.

use nbbst::harness::{prefill, run_for, run_ops, validate_after_run, OpMix, WorkloadSpec};
use nbbst::{ConcurrentMap, NbBst};
use std::time::Duration;

type DynMap = Box<dyn ConcurrentMap<u64, u64>>;

fn all_structures() -> Vec<(&'static str, DynMap)> {
    vec![
        ("nbbst", Box::new(NbBst::new())),
        ("skiplist", Box::new(nbbst::baselines::SkipList::new())),
        ("list", Box::new(nbbst::baselines::LockFreeList::new())),
        ("fine", Box::new(nbbst::baselines::FineLockBst::new())),
        ("coarse", Box::new(nbbst::baselines::CoarseLockBst::new())),
    ]
}

#[test]
fn every_structure_survives_a_balanced_run_with_exact_accounting() {
    let spec = WorkloadSpec {
        mix: OpMix::BALANCED,
        ..WorkloadSpec::read_heavy(512)
    };
    for (name, map) in all_structures() {
        prefill(&*map, &spec);
        let r = run_ops(&*map, &spec, 4, 5_000);
        validate_after_run(&*map, &spec, &r).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn every_structure_survives_update_only_contention() {
    let spec = WorkloadSpec {
        mix: OpMix::UPDATE_ONLY,
        ..WorkloadSpec::read_heavy(32)
    };
    for (name, map) in all_structures() {
        prefill(&*map, &spec);
        let r = run_ops(&*map, &spec, 8, 3_000);
        validate_after_run(&*map, &spec, &r).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn efrb_timed_run_preserves_figure4_and_invariants() {
    let tree: NbBst<u64, u64> = NbBst::with_stats();
    let spec = WorkloadSpec {
        mix: OpMix::BALANCED,
        ..WorkloadSpec::read_heavy(1 << 10)
    };
    prefill(&tree, &spec);
    let r = run_for(&tree, &spec, 8, Duration::from_millis(300));
    validate_after_run(&tree, &spec, &r).unwrap();
    tree.check_invariants().unwrap();
    tree.stats().unwrap().check_figure4().unwrap();
}

#[test]
fn efrb_zipf_skewed_contention() {
    let tree: NbBst<u64, u64> = NbBst::with_stats();
    let spec = WorkloadSpec {
        mix: OpMix::BALANCED,
        dist: nbbst::harness::KeyDist::Zipf { theta: 0.99 },
        ..WorkloadSpec::read_heavy(1 << 12)
    };
    prefill(&tree, &spec);
    let r = run_for(&tree, &spec, 8, Duration::from_millis(300));
    validate_after_run(&tree, &spec, &r).unwrap();
    tree.check_invariants().unwrap();
    tree.stats().unwrap().check_figure4().unwrap();
}

#[test]
fn efrb_hotspot_contention() {
    let tree: NbBst<u64, u64> = NbBst::with_stats();
    let spec = WorkloadSpec {
        mix: OpMix::UPDATE_ONLY,
        dist: nbbst::harness::KeyDist::Hotspot {
            hot_fraction: 0.05,
            hot_access: 0.95,
        },
        ..WorkloadSpec::read_heavy(1 << 10)
    };
    prefill(&tree, &spec);
    let r = run_for(&tree, &spec, 8, Duration::from_millis(300));
    validate_after_run(&tree, &spec, &r).unwrap();
    tree.check_invariants().unwrap();
    tree.stats().unwrap().check_figure4().unwrap();
}

#[test]
fn reclamation_keeps_up_under_stress() {
    let tree: NbBst<u64, u64> = NbBst::new();
    let spec = WorkloadSpec {
        mix: OpMix::UPDATE_ONLY,
        ..WorkloadSpec::read_heavy(1 << 10)
    };
    prefill(&tree, &spec);
    run_for(&tree, &spec, 4, Duration::from_millis(300));
    assert!(
        tree.collector().try_drain(10_000),
        "reclamation fell behind: {:?}",
        tree.collector().stats()
    );
    let s = tree.collector().stats();
    assert!(s.retired > 0, "updates must retire garbage");
    assert_eq!(s.freed, s.retired);
}

#[test]
fn trees_can_be_created_and_dropped_in_bulk() {
    // Teardown correctness across many short-lived trees (Drop paths,
    // collector teardown, TLS handle purging).
    for i in 0..200u64 {
        let tree: NbBst<u64, u64> = NbBst::new();
        for k in 0..(i % 40) {
            tree.insert(k, k);
        }
        for k in 0..(i % 17) {
            tree.remove(&k);
        }
    }
}
