//! The tree over non-trivial key/value types: `String` keys, heap-heavy
//! values, custom `Ord` types — catching any hidden assumptions about
//! alignment, cloning or drop behaviour (the paper's "auxiliary data can
//! also be stored in the leaves").

use nbbst::{ConcurrentMap, NbBst};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

#[test]
fn string_keys_and_values() {
    let t: NbBst<String, String> = NbBst::new();
    for word in ["pear", "apple", "mango", "fig", "banana"] {
        assert!(t.insert(word.to_string(), word.to_uppercase()));
    }
    assert!(!t.insert("fig".to_string(), "FIGUE".to_string()));
    assert_eq!(t.get(&"fig".to_string()).as_deref(), Some("FIG"));
    assert_eq!(
        t.keys_snapshot(),
        vec!["apple", "banana", "fig", "mango", "pear"]
    );
    assert_eq!(t.min_key().as_deref(), Some("apple"));
    assert_eq!(t.max_key().as_deref(), Some("pear"));
    assert!(t.remove(&"apple".to_string()));
    t.check_invariants().unwrap();
}

#[test]
fn tuple_keys_order_lexicographically() {
    let t: NbBst<(u8, &'static str), u32> = NbBst::new();
    t.insert((2, "b"), 1);
    t.insert((1, "z"), 2);
    t.insert((2, "a"), 3);
    assert_eq!(t.keys_snapshot(), vec![(1, "z"), (2, "a"), (2, "b")]);
}

/// A key type with a deliberately "interesting" Ord (reverse order) —
/// the tree must respect the type's Ord, whatever it is.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Reversed(u64);
impl Ord for Reversed {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}
impl PartialOrd for Reversed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[test]
fn custom_ord_is_respected() {
    let t: NbBst<Reversed, u64> = NbBst::new();
    for k in [1u64, 5, 3] {
        assert!(t.insert(Reversed(k), k));
    }
    let keys: Vec<u64> = t.keys_snapshot().into_iter().map(|r| r.0).collect();
    assert_eq!(keys, vec![5, 3, 1], "in-order under the reversed Ord");
    assert_eq!(t.min_key(), Some(Reversed(5)));
    assert_eq!(t.max_key(), Some(Reversed(1)));
}

/// Values whose clones and drops are counted: the tree must drop every
/// allocation it made (values cloned into sibling copies included) and
/// never double-drop.
struct CountedVal {
    _payload: Box<u64>,
    live: Arc<AtomicUsize>,
}
impl CountedVal {
    fn new(live: &Arc<AtomicUsize>) -> CountedVal {
        live.fetch_add(1, AtomicOrdering::SeqCst);
        CountedVal {
            _payload: Box::new(7),
            live: live.clone(),
        }
    }
}
impl Clone for CountedVal {
    fn clone(&self) -> Self {
        CountedVal::new(&self.live)
    }
}
impl Drop for CountedVal {
    fn drop(&mut self) {
        self.live.fetch_sub(1, AtomicOrdering::SeqCst);
    }
}

#[test]
fn every_value_clone_is_dropped_exactly_once() {
    let live = Arc::new(AtomicUsize::new(0));
    {
        let t: NbBst<u64, CountedVal> = NbBst::new();
        for k in 0..100u64 {
            t.insert_entry(k, CountedVal::new(&live)).ok();
        }
        for k in (0..100u64).step_by(3) {
            t.remove_key(&k);
        }
        // More churn: duplicate inserts (rejected values returned+dropped),
        // sibling clones created and retired.
        for k in 0..100u64 {
            let _ = t.insert_entry(k, CountedVal::new(&live));
        }
        // Drain outstanding epoch garbage before the count check.
        assert!(t.collector().try_drain(10_000));
        let snapshot_len = t.len_slow();
        assert!(live.load(AtomicOrdering::SeqCst) >= snapshot_len);
        // Tree (and its collector) drop here.
    }
    assert_eq!(
        live.load(AtomicOrdering::SeqCst),
        0,
        "all values (and their sibling clones) must be dropped exactly once"
    );
}

#[test]
fn concurrent_heap_values_no_leak_no_uaf() {
    let live = Arc::new(AtomicUsize::new(0));
    {
        let t: NbBst<u64, CountedVal> = NbBst::new();
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                let live = &live;
                s.spawn(move || {
                    let mut x = tid + 1;
                    for _ in 0..2_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 32;
                        if x & 1 == 0 {
                            t.insert_entry(k, CountedVal::new(live)).ok();
                        } else {
                            t.remove_key(&k);
                        }
                        // Reads clone the value; the clone drops here.
                        if let Some(v) = t.get_cloned(&k) {
                            drop(v);
                        }
                    }
                });
            }
        });
        t.check_invariants().unwrap();
        // Drain fully before dropping: exited workers hand their garbage
        // over from TLS destructors, which may land slightly after join.
        assert!(
            t.collector().try_drain(100_000),
            "drain stalled: {:?}",
            t.collector().stats()
        );
        // Tree drop frees the reachable structure.
    }
    assert_eq!(
        live.load(AtomicOrdering::SeqCst),
        0,
        "value leak or double drop"
    );
}

#[test]
fn zero_sized_values_work() {
    let t: NbBst<u64, ()> = NbBst::new();
    for k in 0..50 {
        assert!(t.insert(k, ()));
    }
    assert_eq!(t.quiescent_len(), 50);
    for k in 0..50 {
        assert!(t.remove(&k));
    }
    t.check_invariants().unwrap();
}

#[test]
fn large_value_payloads() {
    let t: NbBst<u64, Vec<u8>> = NbBst::new();
    for k in 0..32u64 {
        assert!(t.insert(k, vec![k as u8; 4096]));
    }
    assert_eq!(t.get_with(&7, |v| v.len()), Some(4096));
    assert!(t.get_with(&7, |v| v.iter().all(|&b| b == 7)).unwrap());
    for k in 0..32 {
        t.remove(&k);
    }
    t.check_invariants().unwrap();
}
